//! Tracer backends: the [`Tracer`] trait, the zero-cost [`NullTracer`],
//! and the bounded [`RingTracer`], plus the serializable [`TraceState`]
//! that makes tracing snapshot-aware.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::event::{Subsystem, TraceEvent, TraceRecord};

/// A sink for trace records.
///
/// Implementations must be pure observers: a `Tracer` receives copies of
/// event data and must never influence simulation state (no RNG draws, no
/// shared-state mutation). That property is what makes enabling tracing
/// perturbation-free.
pub trait Tracer {
    /// Whether this tracer wants events at all. When `false`, emit
    /// helpers skip payload construction entirely, so a disabled tracer
    /// costs one thread-local flag read per call-site.
    fn enabled(&self) -> bool;

    /// Record one event at simulated time `at_ns`, with span duration
    /// `dur_ns` (0 for instants).
    fn record(&mut self, at_ns: u64, dur_ns: u64, event: TraceEvent);

    /// Downcast helper: the ring backend, if that is what this is.
    fn as_ring(&self) -> Option<&RingTracer> {
        None
    }

    /// Mutable downcast helper for the ring backend.
    fn as_ring_mut(&mut self) -> Option<&mut RingTracer> {
        None
    }
}

/// The default tracer: discards everything, reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _at_ns: u64, _dur_ns: u64, _event: TraceEvent) {}
}

/// Event filter applied before a record is admitted to the ring.
///
/// Parsed from a comma-separated token list (the `--trace-filter`
/// syntax): each token is either a subsystem name (`gpu`, `driver`,
/// `hostos`, `sim`, `engine`) or an event name (`fault-generated`,
/// `batch-close`, ...). An event passes if it matches *any* token; an
/// empty filter passes everything.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TraceFilter {
    subsystems: Vec<Subsystem>,
    events: Vec<String>,
}

impl TraceFilter {
    /// The pass-everything filter.
    pub fn all() -> Self {
        TraceFilter::default()
    }

    /// Parse a comma-separated token list. Unknown tokens are rejected
    /// with a message listing the valid subsystem names.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut filter = TraceFilter::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(sub) = Subsystem::ALL.iter().find(|s| s.name() == token) {
                filter.subsystems.push(*sub);
            } else if token.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
                filter.events.push(token.to_string());
            } else {
                return Err(format!(
                    "unknown trace filter token `{token}` (expected a subsystem: gpu, driver, hostos, sim, engine — or a kebab-case event name)"
                ));
            }
        }
        Ok(filter)
    }

    /// Whether an event passes this filter.
    pub fn admits(&self, event: &TraceEvent) -> bool {
        if self.subsystems.is_empty() && self.events.is_empty() {
            return true;
        }
        self.subsystems.contains(&event.subsystem())
            || self.events.iter().any(|n| n == event.name())
    }
}

/// Serializable tracer state captured into checkpoints, so a resumed run
/// neither duplicates events already recorded nor drops the record of
/// them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceState {
    /// Next sequence number to assign.
    pub next_seq: u64,
    /// Records evicted by capacity pressure so far.
    pub dropped: u64,
    /// The buffered records.
    pub events: Vec<TraceRecord>,
}

/// A bounded ring-buffer tracer.
///
/// Admits events through a [`TraceFilter`], assigns monotone sequence
/// numbers to admitted events only, and evicts from the front once
/// `capacity` is reached (counting evictions in `dropped`, so exporters
/// can report truncation instead of silently presenting a partial run as
/// complete).
#[derive(Debug)]
pub struct RingTracer {
    capacity: usize,
    filter: TraceFilter,
    events: VecDeque<TraceRecord>,
    next_seq: u64,
    dropped: u64,
}

impl RingTracer {
    /// Create a tracer holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RingTracer::with_filter(capacity, TraceFilter::all())
    }

    /// Create a tracer with an admission filter.
    pub fn with_filter(capacity: usize, filter: TraceFilter) -> Self {
        RingTracer {
            capacity: capacity.max(1),
            filter,
            events: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Buffered records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.events.iter()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records evicted under capacity pressure so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain all buffered records, oldest first. Sequence numbering
    /// continues from where it left off.
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        self.events.drain(..).collect()
    }

    /// Capture the full tracer state for a checkpoint.
    pub fn state(&self) -> TraceState {
        TraceState {
            next_seq: self.next_seq,
            dropped: self.dropped,
            events: self.events.iter().cloned().collect(),
        }
    }

    /// Restore from a checkpointed state, replacing buffered records and
    /// counters. The admission filter and capacity are runtime
    /// configuration and are kept as-is; restored records beyond the
    /// current capacity are evicted oldest-first.
    pub fn restore_state(&mut self, state: TraceState) {
        self.next_seq = state.next_seq;
        self.dropped = state.dropped;
        self.events = state.events.into();
        while self.events.len() > self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }
}

impl Tracer for RingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, at_ns: u64, dur_ns: u64, event: TraceEvent) {
        if !self.filter.admits(&event) {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push_back(TraceRecord { seq, at_ns, dur_ns, event });
    }

    fn as_ring(&self) -> Option<&RingTracer> {
        Some(self)
    }

    fn as_ring_mut(&mut self) -> Option<&mut RingTracer> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replay(seq: u64) -> TraceEvent {
        TraceEvent::Replay { seq, woken: 0 }
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let mut t = RingTracer::new(2);
        t.record(10, 0, replay(1));
        t.record(20, 0, replay(2));
        t.record(30, 0, replay(3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let seqs: Vec<u64> = t.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn filter_admits_by_subsystem_and_event_name() {
        let f = TraceFilter::parse("gpu, batch-close").expect("valid filter");
        assert!(f.admits(&replay(1)));
        assert!(f.admits(&TraceEvent::BatchClose {
            batch: 0,
            raw_faults: 0,
            unique_pages: 0,
            pages_migrated: 0,
            bytes_migrated: 0,
            components: vec![0; 10],
        }));
        assert!(!f.admits(&TraceEvent::Fixed { batch: 0 }));
        assert!(TraceFilter::all().admits(&TraceEvent::Fixed { batch: 0 }));
        assert!(TraceFilter::parse("Bogus!").is_err());
    }

    #[test]
    fn filtered_events_do_not_consume_sequence_numbers() {
        let f = TraceFilter::parse("gpu").expect("valid filter");
        let mut t = RingTracer::with_filter(8, f);
        t.record(1, 0, TraceEvent::Fixed { batch: 0 });
        t.record(2, 0, replay(1));
        let seqs: Vec<u64> = t.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0]);
    }

    #[test]
    fn state_round_trips_and_continues_numbering() {
        let mut t = RingTracer::new(4);
        t.record(5, 0, replay(1));
        t.record(6, 0, replay(2));
        let state = t.state();

        let mut fresh = RingTracer::new(4);
        fresh.restore_state(state.clone());
        assert_eq!(fresh.state(), state);
        fresh.record(7, 0, replay(3));
        let seqs: Vec<u64> = fresh.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
