//! The typed trace-event vocabulary.
//!
//! One [`TraceEvent`] variant per instrumentation point of the servicing
//! stack, mirroring the stages the paper's instrumented driver timestamps
//! (batch assembly, dedup, DMA map, CPU unmap, eviction, population,
//! transfer, PTE updates) plus the GPU-side fault lifecycle (generation,
//! replay, buffer flush) and host-OS operations. Every event is either a
//! *span* (it accounts a duration against one batch-time component) or an
//! *instant* (a point observation); [`TraceEvent::phase`] tells which.
//!
//! The crate deliberately depends on nothing but the vendored `serde`
//! shim, so every layer of the workspace — including `uvm-sim` itself —
//! can emit without a dependency cycle. All times cross this boundary as
//! raw `u64` nanoseconds.

use serde::{Deserialize, Serialize};

/// The subsystem an event originates from (the `--trace-filter` axis and
/// the Chrome-trace thread lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Subsystem {
    /// GPU device model (μTLBs, GMMU, fault buffer, replay).
    Gpu,
    /// UVM driver (batching, dedup, VABlock servicing).
    Driver,
    /// Host OS substrate (page tables, DMA/IOMMU).
    HostOs,
    /// Simulation substrate (fault injection).
    Sim,
    /// The full-system event loop (kernel launches, flushes).
    Engine,
}

impl Subsystem {
    /// All subsystems, in Chrome-trace lane order.
    pub const ALL: [Subsystem; 5] = [
        Subsystem::Gpu,
        Subsystem::Driver,
        Subsystem::HostOs,
        Subsystem::Sim,
        Subsystem::Engine,
    ];

    /// Stable lower-case name (used by filters and exporters).
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Gpu => "gpu",
            Subsystem::Driver => "driver",
            Subsystem::HostOs => "hostos",
            Subsystem::Sim => "sim",
            Subsystem::Engine => "engine",
        }
    }

    /// Chrome-trace thread id for this subsystem's lane (1-based).
    pub fn lane(self) -> u64 {
        1 + Subsystem::ALL.iter().position(|&s| s == self).expect("in ALL") as u64
    }
}

/// Access type of a faulting instruction, as recorded in trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceAccess {
    /// Global load.
    Read,
    /// Global store.
    Write,
    /// Software prefetch instruction.
    Prefetch,
}

/// Whether an event is a duration span or a point instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Has a duration; accounts against a batch-time component.
    Span,
    /// A point observation.
    Instant,
}

/// Names of the ten batch-time components, aligned with the
/// `BatchRecord::t_*` fields and the `report.rs` breakdown order.
pub const COMPONENTS: [&str; 10] = [
    "fetch",
    "preprocess",
    "dma_setup",
    "unmap",
    "populate",
    "transfer",
    "evict",
    "pte",
    "fixed",
    "backoff",
];

/// One typed trace event.
///
/// Span variants carry the batch they account against; the recording
/// duration lives on the enclosing [`TraceRecord`]. Instant variants carry
/// whatever identifies the observation (page, SM, μTLB, VABlock).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    // ---- engine ----
    /// A system run began (separates batch-id spaces when one trace holds
    /// several runs).
    RunBegin {
        /// Workload name.
        workload: String,
    },
    /// A sequential kernel launched.
    KernelLaunch {
        /// Kernel ordinal within the workload (0-based).
        kernel: u64,
    },
    /// A sequential kernel completed (its event queue drained).
    KernelComplete {
        /// Kernel ordinal within the workload (0-based).
        kernel: u64,
    },
    /// The pre-replay buffer flush dropped unserviced entries.
    BufferFlush {
        /// Entries discarded (fault buffer + in-flight GMMU).
        dropped: u64,
    },

    // ---- gpu ----
    /// A fault was arbitrated into the replayable fault buffer.
    FaultGenerated {
        /// Faulting page number.
        page: u64,
        /// Access type.
        kind: TraceAccess,
        /// Originating SM.
        sm: u32,
        /// Originating μTLB.
        utlb: u32,
        /// Issuing warp.
        warp: u32,
        /// Duplicate of an already-outstanding μTLB entry.
        dup: bool,
    },
    /// A fault was dropped at the buffer (overflow or injected storm).
    FaultDropped {
        /// Faulting page number.
        page: u64,
        /// Originating SM.
        sm: u32,
        /// Originating μTLB.
        utlb: u32,
    },
    /// A replay was issued after batch service.
    Replay {
        /// Monotone replay ordinal (1-based).
        seq: u64,
        /// Warps woken by this replay.
        woken: u64,
    },
    /// The GPU reset: fault buffer, GMMU queues, and μTLB tracking state
    /// were lost; in-flight faults regenerate after the next replay.
    GpuReset {
        /// Monotone reset ordinal (1-based).
        seq: u64,
        /// Buffered + in-flight fault entries lost to the reset.
        dropped: u64,
    },

    // ---- sim ----
    /// A fault-injection point fired.
    InjectionFired {
        /// Stable point name (`overflow`, `dma-map`, `copy-engine`,
        /// `host-populate`, `fetch-stall`, `mem-pressure`, `gpu-reset`).
        point: String,
    },

    // ---- hostos ----
    /// `unmap_mapping_range` tore down a block's CPU mappings.
    HostUnmap {
        /// VABlock whose range was unmapped.
        block: u64,
        /// PTEs cleared.
        pages: u64,
        /// Of those, dirty pages.
        dirty: u64,
        /// Distinct CPU cores that had mapped pages (IPI targets).
        mapper_cores: u64,
        /// TLB-shootdown IPIs issued.
        ipis: u64,
    },
    /// DMA/IOMMU mappings were created for a block.
    DmaMap {
        /// VABlock mapped.
        block: u64,
        /// Pages newly mapped.
        pages: u64,
        /// Pages that already had mappings.
        already_mapped: u64,
        /// Radix-tree nodes allocated for reverse mappings.
        radix_nodes: u64,
    },

    // ---- driver: batch lifecycle ----
    /// Batch service began.
    BatchOpen {
        /// Batch sequence number.
        batch: u64,
        /// Raw faults fetched.
        raw_faults: u64,
        /// Whether this is a driver-initiated `cudaMemPrefetchAsync`
        /// operation rather than a fault batch.
        prefetch_op: bool,
    },
    /// Batch service completed. Emitted at the batch's end time with the
    /// final per-component breakdown (nanoseconds, [`COMPONENTS`] order) —
    /// the reconciliation anchor for span-derived breakdowns and for the
    /// `report.rs` aggregate totals.
    BatchClose {
        /// Batch sequence number.
        batch: u64,
        /// Raw faults fetched.
        raw_faults: u64,
        /// Distinct pages after dedup.
        unique_pages: u64,
        /// Pages migrated host→device.
        pages_migrated: u64,
        /// Bytes migrated host→device.
        bytes_migrated: u64,
        /// Final component times in [`COMPONENTS`] order (ns).
        components: Vec<u64>,
    },
    /// Dedup classified this batch's duplicates.
    DedupHit {
        /// Batch sequence number.
        batch: u64,
        /// Same-μTLB duplicates (type 1).
        same_utlb: u64,
        /// Cross-μTLB duplicates (type 2).
        cross_utlb: u64,
        /// Distinct pages remaining.
        unique: u64,
    },
    /// A unique fault entered service with this batch (lifetime anchor:
    /// birth at `arrival_ns`, resolution at the batch's `BatchClose`).
    FaultServiced {
        /// Servicing batch.
        batch: u64,
        /// Faulting page number.
        page: u64,
        /// Originating SM.
        sm: u32,
        /// Originating μTLB.
        utlb: u32,
        /// Arrival time in the fault buffer (ns).
        arrival_ns: u64,
    },
    /// The prefetcher decided how far to expand a block's faulted set.
    PrefetchDecision {
        /// Batch sequence number.
        batch: u64,
        /// VABlock considered.
        block: u64,
        /// Faulted, non-resident pages.
        faulted: u64,
        /// Pages added by tree-density expansion.
        prefetched: u64,
    },
    /// The driver's health state machine transitioned.
    HealthTransition {
        /// Batch sequence number at which the transition was observed.
        batch: u64,
        /// State left (`healthy`, `pressured`, `degraded`, `resetting`).
        from: String,
        /// State entered.
        to: String,
    },
    /// Device memory pressure changed: `reserved` blocks are currently
    /// withheld from UVM (0 = pressure lifted).
    MemoryPressure {
        /// Batch sequence number observing the change.
        batch: u64,
        /// Device blocks reserved away from UVM.
        reserved: u64,
        /// Blocks emergency-evicted to fit the shrunken capacity.
        evicted: u64,
    },
    /// The eviction policy picked victims for a full device (instant,
    /// emitted once per eviction episode — the per-victim costs are the
    /// [`TraceEvent::Evict`] spans that follow).
    EvictDecision {
        /// Batch sequence number.
        batch: u64,
        /// Active eviction policy name (`lru`, `random`, `lfu`).
        policy: String,
        /// Victims evicted in this episode.
        victims: u64,
    },

    // ---- driver: component spans ----
    /// Span: fetching fault entries from the GPU buffer (`t_fetch`).
    Fetch {
        /// Batch sequence number.
        batch: u64,
        /// Faults fetched.
        faults: u64,
    },
    /// Span: parse/sort/dedup preprocessing (`t_preprocess`).
    Preprocess {
        /// Batch sequence number.
        batch: u64,
        /// Faults processed.
        faults: u64,
    },
    /// Span: per-VABlock management overhead while the block's service
    /// lock is held (`t_fixed`, per-block share).
    VaBlockLock {
        /// Batch sequence number.
        batch: u64,
        /// VABlock serviced.
        block: u64,
        /// Unique faults for this block.
        faults: u64,
    },
    /// Span: DMA-map creation + reverse radix-tree inserts
    /// (`t_dma_setup`).
    DmaSetup {
        /// Batch sequence number.
        batch: u64,
        /// VABlock mapped.
        block: u64,
    },
    /// Span: fault-path `unmap_mapping_range` (`t_unmap`).
    CpuUnmap {
        /// Batch sequence number.
        batch: u64,
        /// VABlock unmapped.
        block: u64,
        /// CPU pages unmapped.
        pages: u64,
    },
    /// Span: eviction work (`t_evict`): one per victim writeback, plus a
    /// victimless span for the service-restart surcharge and for
    /// degradation writebacks.
    Evict {
        /// Batch sequence number.
        batch: u64,
        /// Victim block, when this span is a victim writeback.
        victim: Option<u64>,
        /// Bytes written back device→host.
        bytes: u64,
    },
    /// Span: zero-fill population of fresh GPU pages (`t_populate`).
    Populate {
        /// Batch sequence number.
        batch: u64,
        /// VABlock populated.
        block: u64,
        /// Pages populated.
        pages: u64,
    },
    /// Span: host→device data transfer on the copy engines
    /// (`t_transfer`).
    Transfer {
        /// Batch sequence number.
        batch: u64,
        /// VABlock transferred.
        block: u64,
        /// Bytes moved.
        bytes: u64,
    },
    /// Span: GPU page-table updates (`t_pte`).
    PteUpdate {
        /// Batch sequence number.
        batch: u64,
        /// VABlock updated.
        block: u64,
        /// Pages whose PTEs were written.
        pages: u64,
    },
    /// Span: per-batch fixed management overhead + scheduling jitter
    /// (`t_fixed`, end-of-batch share).
    Fixed {
        /// Batch sequence number.
        batch: u64,
    },
    /// Span: deterministic retry backoff after an injected transient
    /// failure (`t_backoff`).
    Backoff {
        /// Batch sequence number.
        batch: u64,
        /// Which stage retried (`fetch`, `dma`, `unmap`, `copy`).
        stage: String,
    },
}

impl TraceEvent {
    /// Stable kebab-case event name (the `--trace-filter` event axis and
    /// the Chrome-trace `name`).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::RunBegin { .. } => "run-begin",
            TraceEvent::KernelLaunch { .. } => "kernel-launch",
            TraceEvent::KernelComplete { .. } => "kernel-complete",
            TraceEvent::BufferFlush { .. } => "buffer-flush",
            TraceEvent::FaultGenerated { .. } => "fault-generated",
            TraceEvent::FaultDropped { .. } => "fault-dropped",
            TraceEvent::Replay { .. } => "replay",
            TraceEvent::GpuReset { .. } => "gpu-reset",
            TraceEvent::InjectionFired { .. } => "injection-fired",
            TraceEvent::HealthTransition { .. } => "health-transition",
            TraceEvent::MemoryPressure { .. } => "memory-pressure",
            TraceEvent::HostUnmap { .. } => "host-unmap",
            TraceEvent::DmaMap { .. } => "dma-map",
            TraceEvent::BatchOpen { .. } => "batch-open",
            TraceEvent::BatchClose { .. } => "batch-close",
            TraceEvent::DedupHit { .. } => "dedup-hit",
            TraceEvent::FaultServiced { .. } => "fault-serviced",
            TraceEvent::PrefetchDecision { .. } => "prefetch-decision",
            TraceEvent::EvictDecision { .. } => "evict-decision",
            TraceEvent::Fetch { .. } => "fetch",
            TraceEvent::Preprocess { .. } => "preprocess",
            TraceEvent::VaBlockLock { .. } => "vablock-lock",
            TraceEvent::DmaSetup { .. } => "dma-setup",
            TraceEvent::CpuUnmap { .. } => "cpu-unmap",
            TraceEvent::Evict { .. } => "evict",
            TraceEvent::Populate { .. } => "populate",
            TraceEvent::Transfer { .. } => "transfer",
            TraceEvent::PteUpdate { .. } => "pte-update",
            TraceEvent::Fixed { .. } => "fixed",
            TraceEvent::Backoff { .. } => "backoff",
        }
    }

    /// Originating subsystem.
    pub fn subsystem(&self) -> Subsystem {
        match self {
            TraceEvent::RunBegin { .. }
            | TraceEvent::KernelLaunch { .. }
            | TraceEvent::KernelComplete { .. }
            | TraceEvent::BufferFlush { .. } => Subsystem::Engine,
            TraceEvent::FaultGenerated { .. }
            | TraceEvent::FaultDropped { .. }
            | TraceEvent::Replay { .. }
            | TraceEvent::GpuReset { .. } => Subsystem::Gpu,
            TraceEvent::InjectionFired { .. } => Subsystem::Sim,
            TraceEvent::HostUnmap { .. } | TraceEvent::DmaMap { .. } => Subsystem::HostOs,
            _ => Subsystem::Driver,
        }
    }

    /// Span or instant.
    pub fn phase(&self) -> Phase {
        match self.component() {
            Some(_) => Phase::Span,
            None => Phase::Instant,
        }
    }

    /// Index into [`COMPONENTS`] of the batch-time component this span
    /// accounts against; `None` for instants.
    pub fn component(&self) -> Option<usize> {
        match self {
            TraceEvent::Fetch { .. } => Some(0),
            TraceEvent::Preprocess { .. } => Some(1),
            TraceEvent::DmaSetup { .. } => Some(2),
            TraceEvent::CpuUnmap { .. } => Some(3),
            TraceEvent::Populate { .. } => Some(4),
            TraceEvent::Transfer { .. } => Some(5),
            TraceEvent::Evict { .. } => Some(6),
            TraceEvent::PteUpdate { .. } => Some(7),
            TraceEvent::VaBlockLock { .. } | TraceEvent::Fixed { .. } => Some(8),
            TraceEvent::Backoff { .. } => Some(9),
            _ => None,
        }
    }

    /// Batch this event belongs to, when it has one.
    pub fn batch(&self) -> Option<u64> {
        match self {
            TraceEvent::BatchOpen { batch, .. }
            | TraceEvent::BatchClose { batch, .. }
            | TraceEvent::HealthTransition { batch, .. }
            | TraceEvent::MemoryPressure { batch, .. }
            | TraceEvent::DedupHit { batch, .. }
            | TraceEvent::FaultServiced { batch, .. }
            | TraceEvent::PrefetchDecision { batch, .. }
            | TraceEvent::EvictDecision { batch, .. }
            | TraceEvent::Fetch { batch, .. }
            | TraceEvent::Preprocess { batch, .. }
            | TraceEvent::VaBlockLock { batch, .. }
            | TraceEvent::DmaSetup { batch, .. }
            | TraceEvent::CpuUnmap { batch, .. }
            | TraceEvent::Evict { batch, .. }
            | TraceEvent::Populate { batch, .. }
            | TraceEvent::Transfer { batch, .. }
            | TraceEvent::PteUpdate { batch, .. }
            | TraceEvent::Fixed { batch, .. }
            | TraceEvent::Backoff { batch, .. } => Some(*batch),
            _ => None,
        }
    }
}

/// One recorded event: a monotone sequence number, the simulated
/// timestamp, the span duration (0 for instants), and the typed payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotone per-tracer sequence number (never reused, survives
    /// snapshot/restore).
    pub seq: u64,
    /// Simulated start time in nanoseconds.
    pub at_ns: u64,
    /// Span duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// The typed event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_subsystems_and_phases_are_consistent() {
        let span = TraceEvent::Transfer { batch: 3, block: 1, bytes: 4096 };
        assert_eq!(span.name(), "transfer");
        assert_eq!(span.subsystem(), Subsystem::Driver);
        assert_eq!(span.phase(), Phase::Span);
        assert_eq!(span.component(), Some(5));
        assert_eq!(COMPONENTS[5], "transfer");
        assert_eq!(span.batch(), Some(3));

        let instant = TraceEvent::Replay { seq: 1, woken: 8 };
        assert_eq!(instant.phase(), Phase::Instant);
        assert_eq!(instant.subsystem(), Subsystem::Gpu);
        assert_eq!(instant.batch(), None);
        assert_eq!(Subsystem::Gpu.lane(), 1);
        assert_eq!(Subsystem::Engine.lane(), 5);
    }

    #[test]
    fn events_round_trip_through_serde() {
        let ev = TraceEvent::FaultGenerated {
            page: 42,
            kind: TraceAccess::Write,
            sm: 3,
            utlb: 1,
            warp: 9,
            dup: false,
        };
        let v = ev.to_value();
        let back = TraceEvent::from_value(&v).expect("round trip");
        assert_eq!(back, ev);

        let rec = TraceRecord { seq: 7, at_ns: 123, dur_ns: 0, event: ev };
        let back = TraceRecord::from_value(&rec.to_value()).expect("round trip");
        assert_eq!(back, rec);
    }
}
