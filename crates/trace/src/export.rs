//! Exporters over recorded traces: Chrome `trace_event` JSON, CSV, the
//! per-batch latency-breakdown table, and fault-lifetime extraction.
//!
//! The breakdown exporter is the reconciliation surface: for every batch
//! it accumulates the component spans the driver emitted *and* the final
//! component vector carried by the batch's `BatchClose` event. The
//! instrumentation is written so the two agree exactly (spans tile the
//! batch's service interval), and the sums over a run equal the
//! `report.rs` aggregate breakdown — [`BatchBreakdown::reconciled`]
//! checks the per-batch half of that contract.

use std::collections::BTreeMap;

use serde::{Serialize, Value};

use crate::event::{Phase, TraceEvent, TraceRecord};

/// Short column labels for the breakdown table, [`COMPONENTS`](crate::COMPONENTS) order.
const COLUMNS: [&str; 10] = [
    "fetch", "preproc", "dma", "unmap", "populate", "transfer", "evict", "pte", "fixed",
    "backoff",
];

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// The `args` object for an event: the field map of its externally-tagged
/// serde encoding (unit variants get an empty map).
fn event_args(event: &TraceEvent) -> Value {
    match event.to_value() {
        Value::Object(mut entries) if entries.len() == 1 => entries.remove(0).1,
        _ => Value::Object(Vec::new()),
    }
}

/// Render records as Chrome `trace_event` JSON (the object form, with a
/// `traceEvents` array), loadable in Perfetto or `chrome://tracing`.
///
/// Spans become complete (`"ph":"X"`) events and instants become
/// thread-scoped instant (`"ph":"i"`) events; each subsystem gets its own
/// named thread lane. Timestamps are microseconds (Chrome's unit), so
/// nanosecond sim times appear as fractional `ts` values.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut events: Vec<Value> = crate::Subsystem::ALL
        .iter()
        .map(|sub| {
            obj(vec![
                ("name", Value::Str("thread_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::NumU(1)),
                ("tid", Value::NumU(sub.lane())),
                ("args", obj(vec![("name", Value::Str(sub.name().into()))])),
            ])
        })
        .collect();
    for rec in records {
        let mut fields = vec![
            ("name", Value::Str(rec.event.name().into())),
            ("cat", Value::Str(rec.event.subsystem().name().into())),
        ];
        match rec.event.phase() {
            Phase::Span => {
                fields.push(("ph", Value::Str("X".into())));
                fields.push(("ts", Value::Float(rec.at_ns as f64 / 1000.0)));
                fields.push(("dur", Value::Float(rec.dur_ns as f64 / 1000.0)));
            }
            Phase::Instant => {
                fields.push(("ph", Value::Str("i".into())));
                fields.push(("ts", Value::Float(rec.at_ns as f64 / 1000.0)));
                fields.push(("s", Value::Str("t".into())));
            }
        }
        fields.push(("pid", Value::NumU(1)));
        fields.push(("tid", Value::NumU(rec.event.subsystem().lane())));
        fields.push(("args", event_args(&rec.event)));
        events.push(obj(fields));
    }
    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ns".into())),
    ]);
    serde_json::to_string(&doc).expect("value tree renders")
}

fn scalar(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::NumU(n) => n.to_string(),
        Value::NumI(n) => n.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => s.clone(),
        composite => serde_json::to_string(composite).expect("value tree renders"),
    }
}

/// Render records as CSV: one row per record with the stable columns
/// `seq,at_ns,dur_ns,subsystem,event,batch,detail`, where `detail` packs
/// the event's remaining fields as space-separated `key=value` pairs.
pub fn csv(records: &[TraceRecord]) -> String {
    let mut out = String::from("seq,at_ns,dur_ns,subsystem,event,batch,detail\n");
    for rec in records {
        let batch = rec
            .event
            .batch()
            .map(|b| b.to_string())
            .unwrap_or_default();
        let detail = match event_args(&rec.event) {
            Value::Object(fields) => fields
                .iter()
                .filter(|(k, _)| k != "batch")
                .map(|(k, v)| format!("{k}={}", scalar(v)))
                .collect::<Vec<_>>()
                .join(" "),
            other => scalar(&other),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            rec.seq,
            rec.at_ns,
            rec.dur_ns,
            rec.event.subsystem().name(),
            rec.event.name(),
            batch,
            detail
        ));
    }
    out
}

/// Per-batch service-time breakdown assembled from a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchBreakdown {
    /// Run ordinal within the trace (0-based; traces holding a single
    /// run have only run 0).
    pub run: u64,
    /// Batch sequence number within its run.
    pub batch: u64,
    /// Whether this was a driver-initiated prefetch operation.
    pub prefetch_op: bool,
    /// Raw faults fetched (from `BatchOpen`).
    pub raw_faults: u64,
    /// Whether the batch's `BatchOpen` survived in the ring. Batches
    /// whose open was evicted have truncated span sums and must not be
    /// used for reconciliation.
    pub open_seen: bool,
    /// Component durations summed from span events ([`COMPONENTS`](crate::COMPONENTS)
    /// order, ns).
    pub spans: [u64; 10],
    /// Final component vector from `BatchClose`, when the close was
    /// observed.
    pub close: Option<[u64; 10]>,
}

impl BatchBreakdown {
    /// Whether both endpoints of the batch were captured.
    pub fn complete(&self) -> bool {
        self.open_seen && self.close.is_some()
    }

    /// Whether the span-derived breakdown matches the `BatchClose`
    /// component vector exactly — the per-batch reconciliation contract.
    pub fn reconciled(&self) -> bool {
        self.close == Some(self.spans)
    }

    /// Total service time of this batch (close vector when present,
    /// span sum otherwise), in ns.
    pub fn total_ns(&self) -> u64 {
        self.close.unwrap_or(self.spans).iter().sum()
    }
}

/// Assemble per-batch breakdowns from a trace, in (run, batch) order.
///
/// Batch sequence numbers restart across runs, so batches are keyed by
/// the ordinal of the preceding `run-begin` event. Records before the
/// first `run-begin` (possible when the ring evicted it) fall into run 0.
pub fn breakdown(records: &[TraceRecord]) -> Vec<BatchBreakdown> {
    let mut runs_seen: u64 = 0;
    let mut by_key: BTreeMap<(u64, u64), BatchBreakdown> = BTreeMap::new();
    for rec in records {
        if matches!(rec.event, TraceEvent::RunBegin { .. }) {
            runs_seen += 1;
            continue;
        }
        let Some(batch) = rec.event.batch() else { continue };
        let run = runs_seen.saturating_sub(1);
        let entry = by_key.entry((run, batch)).or_insert(BatchBreakdown {
            run,
            batch,
            prefetch_op: false,
            raw_faults: 0,
            open_seen: false,
            spans: [0; 10],
            close: None,
        });
        match &rec.event {
            TraceEvent::BatchOpen { raw_faults, prefetch_op, .. } => {
                entry.open_seen = true;
                entry.raw_faults = *raw_faults;
                entry.prefetch_op = *prefetch_op;
            }
            TraceEvent::BatchClose { components, .. } => {
                let mut close = [0u64; 10];
                for (slot, c) in close.iter_mut().zip(components.iter()) {
                    *slot = *c;
                }
                entry.close = Some(close);
            }
            event => {
                if let Some(i) = event.component() {
                    entry.spans[i] += rec.dur_ns;
                }
            }
        }
    }
    by_key.into_values().collect()
}

/// Sum the authoritative component vectors of complete batches —
/// the trace-side counterpart of the `report.rs` aggregate breakdown.
pub fn totals(breakdowns: &[BatchBreakdown]) -> [u64; 10] {
    let mut out = [0u64; 10];
    for b in breakdowns.iter().filter(|b| b.complete()) {
        if let Some(close) = b.close {
            for (slot, c) in out.iter_mut().zip(close.iter()) {
                *slot += c;
            }
        }
    }
    out
}

/// Render breakdowns as an aligned text table with a totals row, marking
/// truncated (incomplete) batches and any span/close mismatch.
pub fn breakdown_table(breakdowns: &[BatchBreakdown]) -> String {
    let mut out = format!(
        "{:>4} {:>6} {:>9} {:>7}",
        "run", "batch", "type", "faults"
    );
    for col in COLUMNS {
        out.push_str(&format!(" {col:>10}"));
    }
    out.push_str(&format!(" {:>12} {}\n", "total_ns", "status"));
    let mut truncated = 0usize;
    for b in breakdowns {
        let kind = if b.prefetch_op { "prefetch" } else { "fault" };
        out.push_str(&format!("{:>4} {:>6} {:>9} {:>7}", b.run, b.batch, kind, b.raw_faults));
        for v in b.close.unwrap_or(b.spans) {
            out.push_str(&format!(" {v:>10}"));
        }
        let status = if !b.complete() {
            truncated += 1;
            "truncated"
        } else if b.reconciled() {
            "ok"
        } else {
            "MISMATCH"
        };
        out.push_str(&format!(" {:>12} {}\n", b.total_ns(), status));
    }
    let t = totals(breakdowns);
    out.push_str(&format!("{:>4} {:>6} {:>9} {:>7}", "", "", "totals", ""));
    for v in t {
        out.push_str(&format!(" {v:>10}"));
    }
    out.push_str(&format!(" {:>12}\n", t.iter().sum::<u64>()));
    if truncated > 0 {
        out.push_str(&format!(
            "note: {truncated} batch(es) truncated by ring eviction; excluded from totals\n"
        ));
    }
    out
}

/// Extract fault service latencies (ns) from a trace: each
/// `fault-serviced` instant's buffer-arrival time joined against its
/// batch's `batch-close` time. Faults whose batch close was not captured
/// are skipped. This reproduces the paper's Figure-1-style fault-latency
/// distribution from trace data alone.
pub fn fault_lifetimes(records: &[TraceRecord]) -> Vec<u64> {
    let mut runs_seen: u64 = 0;
    let mut closes: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for rec in records {
        match &rec.event {
            TraceEvent::RunBegin { .. } => runs_seen += 1,
            TraceEvent::BatchClose { batch, .. } => {
                closes.insert((runs_seen.saturating_sub(1), *batch), rec.at_ns);
            }
            _ => {}
        }
    }
    let mut runs_seen: u64 = 0;
    let mut out = Vec::new();
    for rec in records {
        match &rec.event {
            TraceEvent::RunBegin { .. } => runs_seen += 1,
            TraceEvent::FaultServiced { batch, arrival_ns, .. } => {
                if let Some(&close) = closes.get(&(runs_seen.saturating_sub(1), *batch)) {
                    out.push(close.saturating_sub(*arrival_ns));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceAccess;

    fn span(at: u64, dur: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq: 0, at_ns: at, dur_ns: dur, event }
    }

    fn sample_run() -> Vec<TraceRecord> {
        let close = |components: Vec<u64>| TraceEvent::BatchClose {
            batch: 0,
            raw_faults: 2,
            unique_pages: 2,
            pages_migrated: 2,
            bytes_migrated: 8192,
            components,
        };
        vec![
            span(0, 0, TraceEvent::RunBegin { workload: "t".into() }),
            span(
                5,
                0,
                TraceEvent::FaultServiced { batch: 0, page: 1, sm: 0, utlb: 0, arrival_ns: 5 },
            ),
            span(10, 0, TraceEvent::BatchOpen { batch: 0, raw_faults: 2, prefetch_op: false }),
            span(10, 4, TraceEvent::Fetch { batch: 0, faults: 2 }),
            span(14, 6, TraceEvent::Transfer { batch: 0, block: 0, bytes: 8192 }),
            span(20, 0, close(vec![4, 0, 0, 0, 0, 6, 0, 0, 0, 0])),
        ]
    }

    #[test]
    fn breakdown_reconciles_spans_with_close() {
        let b = breakdown(&sample_run());
        assert_eq!(b.len(), 1);
        assert!(b[0].complete());
        assert!(b[0].reconciled(), "spans {:?} vs close {:?}", b[0].spans, b[0].close);
        assert_eq!(b[0].total_ns(), 10);
        assert_eq!(totals(&b)[0], 4);
        assert_eq!(totals(&b)[5], 6);
        let table = breakdown_table(&b);
        assert!(table.contains("ok"), "table:\n{table}");
        assert!(!table.contains("truncated"));
    }

    #[test]
    fn truncated_batches_are_excluded_from_totals() {
        let mut recs = sample_run();
        recs.retain(|r| !matches!(r.event, TraceEvent::BatchOpen { .. }));
        let b = breakdown(&recs);
        assert!(!b[0].complete());
        assert_eq!(totals(&b), [0; 10]);
        assert!(breakdown_table(&b).contains("truncated"));
    }

    #[test]
    fn batch_ids_restart_across_runs_without_colliding() {
        let mut recs = sample_run();
        recs.extend(sample_run());
        let b = breakdown(&recs);
        assert_eq!(b.len(), 2);
        assert_eq!((b[0].run, b[0].batch), (0, 0));
        assert_eq!((b[1].run, b[1].batch), (1, 0));
    }

    #[test]
    fn fault_lifetimes_join_arrival_to_batch_close() {
        let lat = fault_lifetimes(&sample_run());
        assert_eq!(lat, vec![15]); // close at 20 − arrival at 5
    }

    #[test]
    fn chrome_trace_is_valid_json_with_lanes() {
        let json = chrome_trace(&sample_run());
        let doc = serde_json::parse(&json).expect("valid JSON");
        let Value::Object(fields) = &doc else { panic!("object") };
        let (_, events) = fields.iter().find(|(k, _)| k == "traceEvents").expect("traceEvents");
        let Value::Array(items) = events else { panic!("array") };
        // 5 thread-name metadata events + 6 records.
        assert_eq!(items.len(), 11);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn csv_has_one_row_per_record() {
        let recs = vec![span(
            3,
            0,
            TraceEvent::FaultGenerated {
                page: 9,
                kind: TraceAccess::Read,
                sm: 1,
                utlb: 2,
                warp: 4,
                dup: false,
            },
        )];
        let text = csv(&recs);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("0,3,0,gpu,fault-generated,,"));
        assert!(lines[1].contains("page=9"));
        assert!(lines[1].contains("kind=Read"));
    }
}
