//! Property-based tests on the core data structures and invariants,
//! checked against reference models.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

use uvm_core::{SystemConfig, UvmSystem};
use uvm_driver::bitmap::PageBitmap;
use uvm_driver::dedup::{classify_duplicates, classify_duplicates_with, DedupResult, DedupScratch};
use uvm_driver::evict::{EvictOutcome, GpuMemoryManager};
use uvm_driver::prefetch::compute_prefetch;
use uvm_gpu::fault::{AccessKind, FaultRecord};
use uvm_hostos::page_table::{PageTable, PteFlags};
use uvm_hostos::radix_tree::RadixTree;
use uvm_sim::event::EventQueue;
use uvm_sim::mem::{PageNum, VaBlockId};
use uvm_sim::time::SimTime;
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::stream::{self, StreamParams};

proptest! {
    /// The radix tree behaves exactly like a BTreeMap under arbitrary
    /// insert/remove/get sequences, and its node accounting stays balanced.
    #[test]
    fn radix_tree_matches_model(ops in vec((0u8..3, 0u64..1 << 20, any::<u32>()), 1..300)) {
        let mut tree: RadixTree<u32> = RadixTree::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for (op, key, value) in ops {
            match op {
                0 => {
                    let report = tree.insert(key, value);
                    let existed = model.insert(key, value).is_some();
                    prop_assert_eq!(report.replaced, existed);
                }
                1 => {
                    prop_assert_eq!(tree.remove(key), model.remove(&key));
                }
                _ => {
                    prop_assert_eq!(tree.get(key), model.get(&key));
                }
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
            let s = tree.stats();
            prop_assert_eq!(s.total_allocs - s.total_frees, s.nodes);
        }
        let got: Vec<(u64, u32)> = tree.iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(u64, u32)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// PageBitmap agrees with a BTreeSet model for all operations.
    #[test]
    fn page_bitmap_matches_model(indices in vec(0usize..512, 0..200), other in vec(0usize..512, 0..200)) {
        let bm: PageBitmap = indices.iter().copied().collect();
        let set: BTreeSet<usize> = indices.iter().copied().collect();
        let bm2: PageBitmap = other.iter().copied().collect();
        let set2: BTreeSet<usize> = other.iter().copied().collect();

        prop_assert_eq!(bm.count() as usize, set.len());
        prop_assert_eq!(bm.iter_set().collect::<Vec<_>>(), set.iter().copied().collect::<Vec<_>>());
        for i in 0..512 {
            prop_assert_eq!(bm.get(i), set.contains(&i));
        }
        let or: BTreeSet<usize> = set.union(&set2).copied().collect();
        prop_assert_eq!(bm.or(&bm2).iter_set().collect::<Vec<_>>(), or.into_iter().collect::<Vec<_>>());
        let and: BTreeSet<usize> = set.intersection(&set2).copied().collect();
        prop_assert_eq!(bm.and(&bm2).iter_set().collect::<Vec<_>>(), and.into_iter().collect::<Vec<_>>());
        let diff: BTreeSet<usize> = set.difference(&set2).copied().collect();
        prop_assert_eq!(bm.and_not(&bm2).iter_set().collect::<Vec<_>>(), diff.into_iter().collect::<Vec<_>>());
    }

    /// The host page table agrees with a set model and its unmap work
    /// counts are exact.
    #[test]
    fn page_table_matches_model(
        pages in vec(0u64..4096, 1..200),
        range in (0u64..4096, 1u64..512),
    ) {
        let mut pt = PageTable::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for &p in &pages {
            pt.map(PageNum(p), PteFlags { dirty: p % 2 == 0, writable: true });
            model.insert(p);
        }
        prop_assert_eq!(pt.mapped_pages(), model.len() as u64);

        let (start, len) = range;
        let end = start + len;
        let expect_cleared = model.iter().filter(|&&p| p >= start && p < end).count() as u64;
        let expect_dirty = model.iter().filter(|&&p| p >= start && p < end && p % 2 == 0).count() as u64;
        let work = pt.unmap_range(PageNum(start), PageNum(end));
        prop_assert_eq!(work.ptes_cleared, expect_cleared);
        prop_assert_eq!(work.dirty_pages, expect_dirty);
        model.retain(|&p| p < start || p >= end);
        prop_assert_eq!(pt.mapped_pages(), model.len() as u64);
        let listed: Vec<u64> = pt.mapped_in_range(PageNum(0), PageNum(4096)).iter().map(|p| p.0).collect();
        prop_assert_eq!(listed, model.iter().copied().collect::<Vec<_>>());
    }

    /// Dedup: unique pages partition the batch; counts are exact; order is
    /// first-arrival.
    #[test]
    fn dedup_partitions_batches(pages in vec((0u64..64, 0u32..8), 0..300)) {
        let batch: Vec<FaultRecord> = pages
            .iter()
            .map(|&(p, u)| FaultRecord {
                page: PageNum(p),
                kind: AccessKind::Read,
                sm: u * 2,
                utlb: u,
                warp: 0,
                arrival: SimTime(0),
                dup_of_outstanding: false,
            })
            .collect();
        let result = classify_duplicates(&batch);
        let distinct: BTreeSet<u64> = pages.iter().map(|&(p, _)| p).collect();
        prop_assert_eq!(result.unique.len(), distinct.len());
        prop_assert_eq!(
            result.unique.len() as u64 + result.dup_same_utlb + result.dup_cross_utlb,
            batch.len() as u64
        );
        // Representatives appear in first-arrival order.
        let mut seen = BTreeSet::new();
        let expected: Vec<u64> = pages
            .iter()
            .filter(|&&(p, _)| seen.insert(p))
            .map(|&(p, _)| p)
            .collect();
        prop_assert_eq!(result.unique.iter().map(|f| f.page.0).collect::<Vec<_>>(), expected);
    }

    /// The sort-based scratch-reusing dedup fast path is an exact drop-in
    /// for the reference: identical representatives (page order, upgraded
    /// access kind, and full per-fault attribution fields) and identical
    /// same-μTLB vs cross-μTLB duplicate counts, on arbitrary batches with
    /// mixed read/write kinds — and across scratch reuse.
    #[test]
    fn dedup_fast_path_matches_reference(
        faults in vec((0u64..48, 0u32..8, any::<bool>()), 0..300),
        second in vec((0u64..48, 0u32..8, any::<bool>()), 0..300),
    ) {
        let build = |spec: &[(u64, u32, bool)]| -> Vec<FaultRecord> {
            spec.iter()
                .enumerate()
                .map(|(i, &(p, u, w))| FaultRecord {
                    page: PageNum(p),
                    kind: if w { AccessKind::Write } else { AccessKind::Read },
                    sm: u * 2 + (i as u32 % 2),
                    utlb: u,
                    warp: i as u32,
                    arrival: SimTime(i as u64),
                    dup_of_outstanding: false,
                })
                .collect()
        };
        let mut scratch = DedupScratch::default();
        let mut fast = DedupResult::default();
        // Two consecutive batches through the same scratch: reuse must not
        // leak state from the first classification into the second.
        for spec in [&faults, &second] {
            let batch = build(spec);
            let reference = classify_duplicates(&batch);
            classify_duplicates_with(&batch, &mut scratch, &mut fast);
            prop_assert_eq!(fast.dup_same_utlb, reference.dup_same_utlb);
            prop_assert_eq!(fast.dup_cross_utlb, reference.dup_cross_utlb);
            prop_assert_eq!(fast.unique.len(), reference.unique.len());
            for (f, r) in fast.unique.iter().zip(&reference.unique) {
                prop_assert_eq!(f.page, r.page);
                prop_assert_eq!(f.kind, r.kind);
                prop_assert_eq!(f.sm, r.sm);
                prop_assert_eq!(f.utlb, r.utlb);
                prop_assert_eq!(f.warp, r.warp);
                prop_assert_eq!(f.arrival, r.arrival);
            }
        }
    }

    /// The prefetcher never returns already-occupied pages, stays within
    /// the valid range, and is monotone in its inputs (more residency never
    /// yields less total coverage).
    #[test]
    fn prefetch_invariants(
        resident in vec(0usize..512, 0..256),
        faulted in vec(0usize..512, 1..128),
        valid in 64u32..=512,
    ) {
        let resident: PageBitmap = resident.into_iter().filter(|&i| (i as u32) < valid).collect();
        let faulted: PageBitmap = faulted.into_iter().filter(|&i| (i as u32) < valid).collect();
        let faulted = faulted.and_not(&resident);
        let pf = compute_prefetch(&resident, &faulted, valid, 0.5);
        // Never overlaps occupied pages.
        prop_assert!(pf.and(&resident.or(&faulted)).is_empty());
        // Stays within the valid range.
        prop_assert!(pf.iter_set().all(|i| (i as u32) < valid));
        // Adding residency never shrinks total coverage.
        let mut more = resident;
        more.set_range(0, 8.min(valid as usize));
        let pf2 = compute_prefetch(&more, &faulted.and_not(&more), valid, 0.5);
        let cover1 = pf.or(&resident).or(&faulted).count();
        let cover2 = pf2.or(&more).or(&faulted.and_not(&more)).count();
        prop_assert!(cover2 >= cover1, "coverage {cover2} < {cover1}");
    }

    /// The tree prefetcher is monotone in its density threshold: lowering
    /// the threshold never shrinks the prefetch set (a stricter density
    /// requirement can only drop subtrees, never add them), and every
    /// threshold's output honours the occupancy/range contract.
    #[test]
    fn prefetch_monotone_in_threshold(
        resident in vec(0usize..512, 0..256),
        faulted in vec(0usize..512, 1..128),
        valid in 64u32..=512,
        t_lo_pct in 5u32..95,
        dt_pct in 0u32..90,
    ) {
        let resident: PageBitmap = resident.into_iter().filter(|&i| (i as u32) < valid).collect();
        let faulted: PageBitmap = faulted.into_iter().filter(|&i| (i as u32) < valid).collect();
        let faulted = faulted.and_not(&resident);
        let t_lo = f64::from(t_lo_pct) / 100.0;
        let t_hi = (f64::from(t_lo_pct + dt_pct) / 100.0).min(0.99);
        let at_lo = compute_prefetch(&resident, &faulted, valid, t_lo);
        let at_hi = compute_prefetch(&resident, &faulted, valid, t_hi);
        // The stricter threshold's set is contained in the looser one's.
        prop_assert!(
            at_hi.and_not(&at_lo).is_empty(),
            "threshold {t_hi} prefetched pages threshold {t_lo} did not"
        );
        for pf in [&at_lo, &at_hi] {
            prop_assert!(pf.and(&resident.or(&faulted)).is_empty());
            prop_assert!(pf.iter_set().all(|i| (i as u32) < valid));
        }
    }

    /// The policy engine's output contract holds for *every* prefetch
    /// policy kind on arbitrary inputs: never a resident or faulted page,
    /// never a page at or beyond `valid_pages` — the engine masks whatever
    /// a policy returns, so this holds by construction even for policies
    /// (stride, oracle) that compute raw candidate sets carelessly.
    #[test]
    fn policy_engine_output_is_always_safe(
        resident in vec(0usize..512, 0..256),
        faulted in vec(0usize..512, 1..128),
        future in vec(0usize..512, 0..256),
        valid in 16u32..=512,
        stride in 1u32..64,
        threshold_pct in 5u32..95,
    ) {
        use uvm_driver::engine::run_prefetch_policy;
        use uvm_driver::{PrefetchContext, PrefetchPolicyKind};

        let resident: PageBitmap = resident.into_iter().filter(|&i| (i as u32) < valid).collect();
        let faulted: PageBitmap = faulted.into_iter().filter(|&i| (i as u32) < valid).collect();
        let faulted = faulted.and_not(&resident);
        let future: PageBitmap = future.into_iter().collect();
        for kind in PrefetchPolicyKind::ALL {
            let pf = run_prefetch_policy(kind, &PrefetchContext {
                resident: &resident,
                faulted: &faulted,
                valid_pages: valid,
                threshold: f64::from(threshold_pct) / 100.0,
                stride_pages: stride,
                future: Some(&future),
            });
            prop_assert!(
                pf.and(&resident.or(&faulted)).is_empty(),
                "{} returned an occupied page", kind.name()
            );
            prop_assert!(
                pf.iter_set().all(|i| (i as u32) < valid),
                "{} escaped the valid range", kind.name()
            );
        }
    }

    /// LRU memory manager: capacity is never exceeded, victims are always
    /// the least recently used, and eviction counts are exact.
    #[test]
    fn lru_manager_invariants(requests in vec(0u64..64, 1..300), capacity in 1u64..16) {
        let mut mm = GpuMemoryManager::new(capacity);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new(); // block -> last seq
        let mut evictions = 0u64;
        for (seq, &b) in requests.iter().enumerate() {
            let seq = seq as u64;
            match mm.ensure_resident(VaBlockId(b), seq).unwrap() {
                EvictOutcome::AlreadyResident => {
                    prop_assert!(model.contains_key(&b));
                }
                EvictOutcome::Allocated => {
                    prop_assert!(!model.contains_key(&b));
                    prop_assert!((model.len() as u64) < capacity);
                }
                EvictOutcome::Evicted(victims) => {
                    prop_assert!(!model.contains_key(&b));
                    prop_assert_eq!(model.len() as u64, capacity);
                    for v in victims {
                        // The victim must hold the minimal (seq, id) key.
                        let min = model.iter().map(|(&id, &s)| (s, id)).min().unwrap();
                        prop_assert_eq!((min.1, min.0), (v.0, model[&v.0]));
                        model.remove(&v.0);
                        evictions += 1;
                    }
                }
            }
            model.insert(b, seq);
            prop_assert!(model.len() as u64 <= capacity);
            prop_assert_eq!(mm.resident_blocks(), model.len() as u64);
        }
        prop_assert_eq!(mm.evictions(), evictions);
    }

    /// Event queue: pops are globally ordered by (time, insertion).
    #[test]
    fn event_queue_total_order(times in vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut popped = Vec::new();
        while let Some((at, id)) = q.pop() {
            popped.push((at.as_nanos(), id));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    /// Event queue FIFO tie-break under arbitrary interleavings of
    /// schedule and pop: same-time events always pop in insertion order,
    /// even when scheduled across pops and relative to the advancing
    /// clock.
    #[test]
    fn event_queue_fifo_tie_break_interleaved(ops in vec((0u8..4, 0u64..8), 1..300)) {
        let mut q = EventQueue::new();
        let mut next_id = 0u64;
        // Model: ordered (time, insertion-seq) -> id. Insertion seq is
        // global, so ties at equal times resolve first-scheduled-first.
        let mut model: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut seq = 0u64;
        for (op, dt) in ops {
            if op == 0 {
                // Pop and compare against the model's minimum.
                let got = q.pop();
                let want = model.keys().next().copied();
                match (got, want) {
                    (Some((at, id)), Some(k)) => {
                        let mid = model.remove(&k).unwrap();
                        prop_assert_eq!(at.as_nanos(), k.0);
                        prop_assert_eq!(id, mid);
                    }
                    (None, None) => {}
                    (g, w) => prop_assert!(false, "pop {g:?} vs model {w:?}"),
                }
            } else {
                // Schedule at now + dt; dt in 0..8 forces frequent ties.
                let t = q.now() + uvm_sim::time::SimDuration(dt);
                q.schedule(t, next_id);
                model.insert((t.as_nanos(), seq), next_id);
                next_id += 1;
                seq += 1;
            }
        }
        // Drain: the remainder pops in exact model order.
        while let Some((at, id)) = q.pop() {
            let k = *model.keys().next().unwrap();
            prop_assert_eq!((at.as_nanos(), id), (k.0, model.remove(&k).unwrap()));
        }
        prop_assert!(model.is_empty());
    }

    /// Fault-buffer conservation under random push/fetch/flush sequences
    /// (with an injected overflow storm): every attempted push is either
    /// inserted or an overflow drop, and every inserted entry is either
    /// still buffered, fetched, or a flush drop.
    #[test]
    fn fault_buffer_conserves_entries(
        ops in vec((0u8..8, 0u64..200), 1..300),
        capacity in 1u32..64,
        storm_at in 0u64..2000,
    ) {
        use uvm_gpu::fault_buffer::FaultBuffer;
        use uvm_sim::inject::{PointInjector, PointPlan};
        use uvm_sim::rng::DetRng;

        let mut fb = FaultBuffer::new(capacity);
        fb.set_injector(PointInjector::new(
            &PointPlan::scheduled(SimTime(storm_at), 4),
            DetRng::new(1),
        ));
        let mut attempts = 0u64;
        let mut fetched = 0u64;
        let mut now = 0u64;
        for (op, arg) in ops {
            match op {
                0..=4 => {
                    // Push (biased: buffers mostly fill). Arrivals are
                    // monotone like the hardware's.
                    now += arg;
                    attempts += 1;
                    fb.push(FaultRecord {
                        page: PageNum(arg),
                        kind: AccessKind::Read,
                        sm: 0,
                        utlb: (arg % 8) as u32,
                        warp: 0,
                        arrival: SimTime(now),
                        dup_of_outstanding: false,
                    });
                }
                5 | 6 => {
                    fetched += fb.fetch(arg as usize % 32, SimTime(now)).len() as u64;
                }
                _ => {
                    fb.flush();
                }
            }
            // Conservation, checked after every operation.
            prop_assert_eq!(attempts, fb.total_inserted() + fb.overflow_drops());
            prop_assert_eq!(
                fb.total_inserted(),
                fb.len() as u64 + fetched + fb.flush_drops()
            );
            prop_assert!(fb.len() as u64 <= capacity as u64);
        }
    }
}

proptest! {
    /// GEMM tile page sets cover exactly the bytes the tile occupies: the
    /// page of every element of the tile is present, and every listed page
    /// intersects the tile's rows.
    #[test]
    fn gemm_tile_pages_cover_tile(
        n_exp in 8u32..12,           // n in 256..4096
        elem in prop_oneof![Just(4u64), Just(8u64)],
        ti in 0u64..4,
        tj in 0u64..4,
    ) {
        let n = 1u64 << n_exp;
        let tile = n / 4;
        let alloc = uvm_core::sim::mem::AddressSpaceAllocator::new().alloc(n * n * elem);
        let pages = uvm_workloads::sgemm::tile_pages(&alloc, n, elem, ti * tile, tj * tile, tile);
        prop_assert!(!pages.is_empty());
        // Corners of the tile map into the set.
        for (r, c) in [
            (ti * tile, tj * tile),
            (ti * tile, tj * tile + tile - 1),
            (ti * tile + tile - 1, tj * tile),
            (ti * tile + tile - 1, tj * tile + tile - 1),
        ] {
            let addr = uvm_core::sim::mem::VirtAddr(alloc.base.0 + (r * n + c) * elem);
            prop_assert!(pages.contains(&addr.page()), "corner ({r},{c}) missing");
        }
        // Sorted and deduplicated.
        for w in pages.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // All pages within the allocation.
        for p in &pages {
            prop_assert!(alloc.contains(p.base_addr()));
        }
    }

    /// CPU-init policies always touch each page exactly once, whatever the
    /// thread count.
    #[test]
    fn cpu_init_touches_each_page_once(blocks in 1u64..6, threads in 0u32..40, which in 0u8..3) {
        let alloc = uvm_core::sim::mem::AddressSpaceAllocator::new()
            .alloc(blocks * uvm_core::sim::mem::VABLOCK_SIZE);
        let policy = match which {
            0 => CpuInitPolicy::SingleThread,
            1 => CpuInitPolicy::Chunked { threads },
            _ => CpuInitPolicy::Striped { threads },
        };
        let touches = policy.touches(&alloc);
        prop_assert_eq!(touches.len() as u64, alloc.num_pages());
        let distinct: BTreeSet<_> = touches.iter().map(|t| t.page).collect();
        prop_assert_eq!(distinct.len() as u64, alloc.num_pages());
        for t in &touches {
            prop_assert!(t.core < 128);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whole-system conservation under random small configurations: every
    /// touched page ends up migrated (in-core), and the batch accounting
    /// balances.
    #[test]
    fn system_page_conservation(
        warps in 4u32..32,
        ppw in 1u64..8,
        share in 1u32..4,
        seed in 0u64..1000,
    ) {
        let w = stream::build(StreamParams {
            warps,
            pages_per_warp: ppw,
            iters: 1,
            warps_per_page: share,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        });
        let touched: BTreeSet<_> = w.programs.iter().flat_map(|p| p.touched_pages()).collect();
        let result = UvmSystem::new(
            SystemConfig::test_small(256 * 1024 * 1024).with_seed(seed),
        )
        .run(&w);
        let migrated: u64 = result.records.iter().map(|r| r.pages_migrated).sum();
        prop_assert_eq!(migrated, touched.len() as u64);
        prop_assert!(result.total_batch_time <= result.kernel_time);
        for r in &result.records {
            prop_assert!(r.unique_pages <= r.raw_faults);
            prop_assert_eq!(r.end - r.start, r.component_sum());
        }
    }

    /// Checkpoint/restore transparency: snapshotting a run at an arbitrary
    /// batch index, round-tripping the snapshot through JSON, restoring,
    /// and running to completion is bit-identical to the uninterrupted
    /// run — for any workload shape, seed, and checkpoint position
    /// (including positions past the end of the run, where no checkpoint
    /// is taken at all).
    #[test]
    fn snapshot_restore_is_bit_identical(
        warps in 8u32..32,
        ppw in 2u64..8,
        checkpoint_at in 1u64..40,
        seed in 0u64..1000,
    ) {
        use uvm_core::{Progress, RunHints, RunInProgress, SystemSnapshot};

        let w = stream::build(StreamParams {
            warps,
            pages_per_warp: ppw,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(CpuInitPolicy::Striped { threads: 4 }),
        });
        // Small enough to force evictions for the larger shapes.
        let config = SystemConfig::test_small(16 * 1024 * 1024).with_seed(seed);
        let straight = UvmSystem::new(config.clone()).run(&w);

        let mut run = UvmSystem::new(config)
            .start(&w, &RunHints::default())
            .expect("run starts");
        let mut snap = None;
        loop {
            match run.advance_batch(&w).expect("batch services") {
                Progress::Finished => break,
                Progress::Batch(n) if n == checkpoint_at => {
                    snap = Some(run.snapshot(&w, 0));
                    break;
                }
                Progress::Batch(_) => {}
            }
        }
        let result = match snap {
            Some(s) => {
                // Full fidelity must survive the on-disk encoding.
                let json = serde_json::to_string(&s).expect("snapshot serializes");
                let back: SystemSnapshot = serde_json::from_str(&json).expect("snapshot parses");
                let mut resumed = RunInProgress::restore(&back, &w).expect("snapshot restores");
                while resumed.advance_batch(&w).expect("batch services") != Progress::Finished {}
                resumed.into_result(&w)
            }
            // The run finished before the checkpoint index came up.
            None => run.into_result(&w),
        };
        prop_assert_eq!(
            serde_json::to_string(&straight).expect("result serializes"),
            serde_json::to_string(&result).expect("result serializes"),
            "restored run must be byte-identical to the uninterrupted run"
        );
    }
}

proptest! {
    // Each case runs two full simulations; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Trace reconciliation: for arbitrary workload shapes and seeds,
    /// running under a RingTracer (1) leaves the run result bit-identical
    /// to an untraced run, and (2) yields a per-batch breakdown whose
    /// component spans tile to exactly each batch's `BatchClose` vector —
    /// which is the batch record's own component breakdown — so the trace
    /// totals equal the `report.rs` aggregate by construction.
    #[test]
    fn trace_breakdown_reconciles_with_report(
        warps in 8u32..32,
        ppw in 2u64..8,
        seed in 0u64..1000,
    ) {
        use uvm_core::trace::{self, RingTracer};

        let w = stream::build(StreamParams {
            warps,
            pages_per_warp: ppw,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(CpuInitPolicy::Striped { threads: 4 }),
        });
        // Small enough to force evictions for the larger shapes.
        let config = SystemConfig::test_small(16 * 1024 * 1024).with_seed(seed);
        let plain = UvmSystem::new(config.clone()).run(&w);

        trace::install(Box::new(RingTracer::new(1 << 20)));
        let traced = UvmSystem::new(config).run(&w);
        let tracer = trace::uninstall().expect("tracer still installed");
        let ring = tracer.as_ring().expect("ring backend");
        let records: Vec<_> = ring.records().cloned().collect();
        prop_assert_eq!(ring.dropped(), 0);

        prop_assert_eq!(
            serde_json::to_string(&plain).expect("result serializes"),
            serde_json::to_string(&traced).expect("result serializes"),
            "tracing must not perturb simulated results"
        );

        let breakdowns = trace::breakdown(&records);
        prop_assert_eq!(breakdowns.len(), traced.records.len());
        let mut want_totals = [0u64; 10];
        for (b, r) in breakdowns.iter().zip(traced.records.iter()) {
            prop_assert_eq!(b.batch, r.seq);
            prop_assert!(b.complete(), "batch {} truncated", r.seq);
            prop_assert!(
                b.reconciled(),
                "batch {}: spans {:?} != close {:?}",
                r.seq, b.spans, b.close
            );
            prop_assert_eq!(b.close, Some(r.component_ns()));
            for (slot, c) in want_totals.iter_mut().zip(r.component_ns()) {
                *slot += c;
            }
        }
        prop_assert_eq!(trace::totals(&breakdowns), want_totals);
    }
}
