//! End-to-end verification of the paper's headline claims, each tied to
//! the section that makes it. These run at reduced scale; the full-scale
//! regeneration lives in `crates/bench` (`cargo run --release -p uvm-bench
//! --bin paper`).

use uvm_core::{SystemConfig, UvmSystem};
use uvm_driver::policy::DriverPolicy;
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::prefetch_ub::{self, PrefetchUbParams};
use uvm_workloads::vecadd::{self, VecAddParams};

const MB: u64 = 1024 * 1024;

/// Sec. 3.2: "The maximum number of outstanding faults per μTLB is 56" —
/// the first vector-addition batch holds exactly 56 faults (all of A's
/// reads plus most of B's).
#[test]
fn claim_utlb_limit_is_56() {
    let result = UvmSystem::new(SystemConfig::test_small(64 * MB))
        .run(&vecadd::build(VecAddParams::default()));
    assert_eq!(result.records[0].raw_faults, 56);
    assert_eq!(result.records[0].read_faults, 56);
    assert_eq!(result.records[1].raw_faults, 8, "the remaining B reads follow");
}

/// Sec. 3.2 / Listing 2: "no write accesses can execute until all 64
/// prerequisite reads have been fulfilled."
#[test]
fn claim_writes_wait_for_reads() {
    let result = UvmSystem::new(SystemConfig::test_small(64 * MB))
        .run(&vecadd::build(VecAddParams::default()));
    let first_write_batch = result
        .records
        .iter()
        .find(|r| r.write_faults > 0)
        .expect("writes fault")
        .seq;
    let reads_before: u64 = result
        .records
        .iter()
        .take_while(|r| r.seq < first_write_batch)
        .map(|r| r.read_faults)
        .sum();
    assert!(reads_before >= 64, "all 64 statement-1 reads precede any write");
}

/// Sec. 3.2 / Fig. 5: prefetch instructions escape the μTLB limit — a
/// single warp fills a batch to the software limit, and the excess is
/// dropped.
#[test]
fn claim_prefetch_fills_batch() {
    let result = UvmSystem::new(SystemConfig::test_small(64 * MB))
        .run(&prefetch_ub::build(PrefetchUbParams::default()));
    assert_eq!(result.records[0].raw_faults, 256);
    assert!(result.flush_drops >= 44);
}

/// Sec. 4.1 / Fig. 7: data transfer is not the dominant batch cost.
#[test]
fn claim_transfer_is_minority_cost() {
    let w = uvm_workloads::sgemm::build(uvm_workloads::sgemm::GemmParams {
        n: 1024,
        tile: 128,
        elem_size: 4,
        pages_per_instr: 32,
        compute_per_ktile: uvm_sim::time::SimDuration::from_micros(20),
        cpu_init: Some(CpuInitPolicy::SingleThread),
    });
    let result = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&w);
    let max_fraction = result
        .records
        .iter()
        .map(|r| r.transfer_fraction())
        .fold(0.0, f64::max);
    assert!(max_fraction < 0.35, "transfer stays a minority: {max_fraction:.2}");
}

/// Sec. 4.2 / Fig. 9: larger batch limits beat smaller ones (the per-batch
/// overhead outweighs extra duplicates).
#[test]
fn claim_larger_batches_are_faster() {
    let mk = || {
        uvm_workloads::stream::build(uvm_workloads::stream::StreamParams {
            warps: 256,
            pages_per_warp: 8,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        })
    };
    let small = UvmSystem::new(
        SystemConfig::test_small(64 * MB).with_policy(DriverPolicy::default().batch_limit(32)),
    )
    .run(&mk());
    let large = UvmSystem::new(
        SystemConfig::test_small(64 * MB).with_policy(DriverPolicy::default().batch_limit(256)),
    )
    .run(&mk());
    assert!(
        large.kernel_time < small.kernel_time,
        "batch 256 ({}) beats batch 32 ({})",
        large.kernel_time,
        small.kernel_time
    );
    assert!(large.num_batches < small.num_batches);
}

/// Sec. 4.4 / Fig. 11: multithreaded CPU initialization inflates the
/// fault-path unmap cost.
#[test]
fn claim_multithreaded_init_inflates_unmap() {
    let run = |policy: CpuInitPolicy| {
        let w = uvm_workloads::stream::build(uvm_workloads::stream::StreamParams {
            warps: 64,
            pages_per_warp: 16,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(policy),
        });
        let result = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&w);
        result.records.iter().map(|r| r.t_unmap.as_nanos()).sum::<u64>()
    };
    let single = run(CpuInitPolicy::SingleThread);
    let striped = run(CpuInitPolicy::Striped { threads: 16 });
    assert!(
        striped as f64 > single as f64 * 1.5,
        "striped unmap {striped}ns vs single {single}ns"
    );
}

/// Sec. 5.1 / Fig. 13: a block evicted once and paged back in does not pay
/// the unmap cost a second time.
#[test]
fn claim_remigration_skips_unmap() {
    let w = uvm_workloads::stream::build(uvm_workloads::stream::StreamParams {
        warps: 64,
        pages_per_warp: 32,
        iters: 2,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    });
    let result = UvmSystem::new(SystemConfig::test_small(8 * MB)).run(&w);
    assert!(result.evictions > 0);
    // Unmap calls are bounded by the number of CPU-initialized blocks: the
    // re-migrations in iteration 2 add none.
    let a_b_blocks = 2 * w.allocations[0].num_va_blocks();
    let unmapping_batches: u64 = result
        .records
        .iter()
        .map(|r| if r.cpu_pages_unmapped > 0 { r.num_va_blocks } else { 0 })
        .sum();
    assert!(
        unmapping_batches <= a_b_blocks * 2,
        "unmap happens only on first touches"
    );
    let unmapped: u64 = result.records.iter().map(|r| r.cpu_pages_unmapped).sum();
    assert_eq!(
        unmapped,
        2 * w.allocations[0].num_pages(),
        "each CPU page is unmapped exactly once across the whole run"
    );
}

/// Sec. 5.2 / Fig. 14: prefetching eliminates most batches but cannot
/// remove the compulsory first-touch DMA-setup batches.
#[test]
fn claim_prefetch_cannot_remove_dma_setup() {
    let mk = || {
        uvm_workloads::stream::build(uvm_workloads::stream::StreamParams {
            warps: 64,
            pages_per_warp: 32,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        })
    };
    let base = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&mk());
    let pf = UvmSystem::new(
        SystemConfig::test_small(64 * MB).with_policy(DriverPolicy::with_prefetch()),
    )
    .run(&mk());
    assert!(pf.num_batches < base.num_batches);
    // Every VABlock still pays DMA setup exactly once, prefetch or not.
    let dma_blocks = |r: &uvm_core::RunResult| -> u64 {
        r.records.iter().map(|b| b.new_va_blocks).sum()
    };
    assert_eq!(dma_blocks(&base), dma_blocks(&pf));
    assert_eq!(dma_blocks(&pf), mk().footprint_blocks());
}

/// Sec. 5.3 (citing prior work): "the combination of prefetching and
/// eviction can harm performance for applications with irregular access
/// patterns" — for oversubscribed uniform-random access, prefetching's
/// density heuristic finds no locality worth expanding, and what it does
/// prefetch is evicted before its (random) reuse: no meaningful win, in
/// contrast to the multi-x speedups of the regular apps (Table 4).
#[test]
fn claim_prefetch_does_not_rescue_irregular_apps() {
    let w = uvm_workloads::random::build(uvm_workloads::random::RandomParams {
        warps: 128,
        accesses_per_warp: 64,
        footprint_pages: 16 * 1024,
        seed: 5,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    });
    let mem = w.footprint_bytes() / 2; // 200% oversubscription
    let base = UvmSystem::new(SystemConfig::test_small(mem)).run(&w);
    let pf = UvmSystem::new(
        SystemConfig::test_small(mem).with_policy(DriverPolicy::with_prefetch()),
    )
    .run(&w);
    let speedup = base.kernel_time.as_nanos() as f64 / pf.kernel_time.as_nanos().max(1) as f64;
    assert!(
        speedup < 1.5,
        "prefetch should not rescue uniform-random access under eviction: {speedup:.2}x"
    );
    assert!(pf.evictions > 0 && base.evictions > 0);
}

/// Sec. 5.2 / Figs. 14–16, through the pluggable policy engine: one quick
/// policy × workload grid (the same cells `paper sweep --quick` renders
/// and the `ext_policy_quick.txt` golden pins) carries three claims:
///
/// 1. Fig. 14: for dense access (the Gauss-Seidel row sweep), the tree
///    density prefetcher collapses the batch count and speeds the kernel —
///    the locality is exactly what the density heuristic detects.
/// 2. Sec. 5.3 (citing Ganguly et al.): for irregular pointer-chasing
///    access (graph BFS) under oversubscription, the same prefetcher finds
///    nothing to expand — no meaningful batch reduction, no speedup, and
///    at least as many pages migrated (the churn Fig. 15's combined
///    eviction + prefetching panels warn about).
/// 3. The oracle prefetcher (perfect future knowledge) is the upper bound
///    reactive and learned schemes chase: on every workload it needs the
///    fewest batches and the least kernel time of any prefetcher.
#[test]
fn claim_policy_grid_matches_section_5_2() {
    let grid = uvm_core::experiments::ext_policy::run_scaled(0x5C21, true);
    let cell = |w: &str, p: &str| grid.cell(w, p, "lru").expect("grid cell exists");

    // (1) Dense: tree collapses batches and speeds the kernel.
    let (dense_none, dense_tree) = (cell("gauss-seidel", "none"), cell("gauss-seidel", "tree"));
    assert!(
        dense_tree.batches * 4 < dense_none.batches,
        "tree should collapse dense batches: {} vs {}",
        dense_tree.batches,
        dense_none.batches
    );
    assert!(dense_tree.kernel_ms < dense_none.kernel_ms);

    // (2) Irregular: tree neither reduces batches meaningfully nor speeds
    // the kernel, and migrates at least as much data.
    let (bfs_none, bfs_tree) = (cell("graph-bfs", "none"), cell("graph-bfs", "tree"));
    assert!(
        bfs_tree.batches * 20 >= bfs_none.batches * 19,
        "tree should not meaningfully cut irregular batches: {} vs {}",
        bfs_tree.batches,
        bfs_none.batches
    );
    assert!(
        bfs_tree.kernel_ms >= bfs_none.kernel_ms * 0.9,
        "no speedup on pointer-chasing access: {:.2} vs {:.2}",
        bfs_tree.kernel_ms,
        bfs_none.kernel_ms
    );
    assert!(bfs_tree.pages_migrated >= bfs_none.pages_migrated);

    // (3) Oracle is the per-workload upper bound across prefetchers.
    for w in ["vecadd", "gauss-seidel", "graph-bfs", "attention"] {
        let oracle = cell(w, "oracle");
        for p in ["none", "tree", "stride"] {
            let other = cell(w, p);
            assert!(
                oracle.kernel_ms <= other.kernel_ms,
                "{w}: oracle {:.2} ms beaten by {p} {:.2} ms",
                oracle.kernel_ms,
                other.kernel_ms
            );
            assert!(oracle.batches <= other.batches, "{w}: oracle batches vs {p}");
        }
    }
}

/// Sec. 6 "Driver Serialization": the GPU is generally stalled during
/// driver fault processing — kernel time is dominated by batch time for
/// fault-heavy runs.
#[test]
fn claim_driver_is_the_bottleneck() {
    let w = uvm_workloads::stream::build(uvm_workloads::stream::StreamParams {
        warps: 64,
        pages_per_warp: 32,
        iters: 1,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    });
    let result = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&w);
    let ratio =
        result.total_batch_time.as_nanos() as f64 / result.kernel_time.as_nanos() as f64;
    assert!(
        ratio > 0.5,
        "batch servicing should dominate a fault-heavy kernel: {ratio:.2}"
    );
}
