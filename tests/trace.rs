//! Integration tests for the `uvm-trace` subsystem: perturbation freedom
//! (tracing never changes simulated results), reconciliation (span-derived
//! breakdowns match the driver's batch records exactly), and snapshot
//! awareness (a killed-and-resumed traced run records every event exactly
//! once).
//!
//! The tracer sink is thread-local; each test installs and uninstalls its
//! own backend, so these tests are safe under the default parallel test
//! runner.

use uvm_core::trace::{self, RingTracer, TraceFilter, TraceRecord};
use uvm_core::{Progress, RunHints, RunInProgress, RunResult, SystemConfig, UvmSystem};
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::stream::{self, StreamParams};
use uvm_workloads::Workload;

const MB: u64 = 1024 * 1024;

fn workload() -> Workload {
    stream::build(StreamParams {
        warps: 32,
        pages_per_warp: 8,
        iters: 1,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::Striped { threads: 4 }),
    })
}

fn config() -> SystemConfig {
    // Small enough to force evictions, so the evict span path is covered.
    SystemConfig::test_small(16 * MB).with_seed(0x5C21)
}

/// Uninstalls the thread-local tracer when dropped, so a failing assert
/// cannot leak a tracer into the next test on this thread.
struct TracerGuard;

impl Drop for TracerGuard {
    fn drop(&mut self) {
        trace::uninstall();
    }
}

fn run_traced(config: SystemConfig, w: &Workload) -> (RunResult, Vec<TraceRecord>) {
    let _guard = TracerGuard;
    trace::install(Box::new(RingTracer::new(1 << 20)));
    let result = UvmSystem::new(config).run(w);
    let tracer = trace::uninstall().expect("tracer still installed");
    let ring = tracer.as_ring().expect("ring backend");
    assert_eq!(ring.dropped(), 0, "ring must be large enough for the run");
    (result, ring.records().cloned().collect())
}

fn result_json(r: &RunResult) -> String {
    serde_json::to_string(r).expect("result serializes")
}

#[test]
fn ring_tracing_is_perturbation_free() {
    let w = workload();
    let plain = UvmSystem::new(config()).run(&w);
    let (traced, records) = run_traced(config(), &w);
    assert_eq!(
        result_json(&plain),
        result_json(&traced),
        "installing a RingTracer must not change simulated results"
    );
    assert!(!records.is_empty(), "the traced run must record events");
}

#[test]
fn trace_breakdown_reconciles_with_batch_records() {
    let w = workload();
    let (result, records) = run_traced(config(), &w);
    let breakdowns = trace::breakdown(&records);
    assert_eq!(breakdowns.len(), result.records.len());
    let mut want = [0u64; 10];
    for (b, r) in breakdowns.iter().zip(result.records.iter()) {
        assert_eq!(b.batch, r.seq);
        assert!(b.complete(), "batch {} missing open/close", r.seq);
        assert!(
            b.reconciled(),
            "batch {}: spans {:?} != close {:?}",
            r.seq,
            b.spans,
            b.close
        );
        assert_eq!(b.close, Some(r.component_ns()));
        for (slot, c) in want.iter_mut().zip(r.component_ns()) {
            *slot += c;
        }
    }
    assert_eq!(trace::totals(&breakdowns), want);

    // The exporters accept the full run: the Chrome trace parses as JSON
    // and the CSV carries one row per record.
    let json = trace::chrome_trace(&records);
    serde_json::parse(&json).expect("chrome trace is valid JSON");
    assert_eq!(trace::csv(&records).lines().count(), records.len() + 1);

    // Fault lifetimes cover every uniquely serviced page of every batch.
    let unique: u64 = result.records.iter().map(|r| r.unique_pages).sum();
    assert_eq!(trace::fault_lifetimes(&records).len() as u64, unique);
}

#[test]
fn resumed_traced_run_records_every_event_exactly_once() {
    let w = workload();
    let (_, straight) = run_traced(config(), &w);

    // Kill the run mid-flight: trace to a checkpoint at batch 3, then
    // throw away the live tracer (process death), restore into a fresh
    // one, and finish.
    let _guard = TracerGuard;
    trace::install(Box::new(RingTracer::new(1 << 20)));
    let mut run = UvmSystem::new(config())
        .start(&w, &RunHints::default())
        .expect("run starts");
    let snap = loop {
        match run.advance_batch(&w).expect("batch services") {
            Progress::Batch(3) => break run.snapshot(&w, 0),
            Progress::Batch(_) => {}
            Progress::Finished => panic!("run finished before the checkpoint batch"),
        }
    };
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    trace::uninstall();

    trace::install(Box::new(RingTracer::new(1 << 20)));
    let back = serde_json::from_str(&json).expect("snapshot parses");
    let mut resumed = RunInProgress::restore(&back, &w).expect("snapshot restores");
    while resumed.advance_batch(&w).expect("batch services") != Progress::Finished {}
    resumed.into_result(&w);
    let tracer = trace::uninstall().expect("tracer installed");
    let replayed: Vec<TraceRecord> =
        tracer.as_ring().expect("ring backend").records().cloned().collect();

    assert_eq!(
        replayed, straight,
        "a killed-and-resumed traced run must record the same events, \
         each exactly once, as an uninterrupted traced run"
    );
}

#[test]
fn traced_snapshot_restores_without_a_tracer() {
    let w = workload();
    let plain = UvmSystem::new(config()).run(&w);

    let _guard = TracerGuard;
    trace::install(Box::new(RingTracer::new(1 << 20)));
    let mut run = UvmSystem::new(config())
        .start(&w, &RunHints::default())
        .expect("run starts");
    let snap = loop {
        match run.advance_batch(&w).expect("batch services") {
            Progress::Batch(2) => break run.snapshot(&w, 0),
            Progress::Batch(_) => {}
            Progress::Finished => panic!("run finished before the checkpoint batch"),
        }
    };
    trace::uninstall();

    // Restoring a traced checkpoint with tracing off must work (the
    // buffered events are simply dropped) and still finish bit-identically.
    let mut resumed = RunInProgress::restore(&snap, &w).expect("snapshot restores");
    while resumed.advance_batch(&w).expect("batch services") != Progress::Finished {}
    assert_eq!(result_json(&plain), result_json(&resumed.into_result(&w)));
}

#[test]
fn trace_filter_narrows_capture_without_perturbing() {
    let w = workload();
    let plain = UvmSystem::new(config()).run(&w);

    let _guard = TracerGuard;
    let filter = TraceFilter::parse("batch-close").expect("valid filter");
    trace::install(Box::new(RingTracer::with_filter(1 << 20, filter)));
    let filtered = UvmSystem::new(config()).run(&w);
    let tracer = trace::uninstall().expect("tracer installed");
    let records: Vec<TraceRecord> =
        tracer.as_ring().expect("ring backend").records().cloned().collect();

    assert_eq!(result_json(&plain), result_json(&filtered));
    assert_eq!(records.len(), plain.records.len());
    assert!(records
        .iter()
        .all(|r| r.event.name() == "batch-close"));
    // Filtered-out events must not consume sequence numbers.
    let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
    assert_eq!(seqs, (0..records.len() as u64).collect::<Vec<_>>());
}
