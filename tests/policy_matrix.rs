//! Differential invariant tests across the pluggable-policy grid.
//!
//! Every (prefetch, eviction) policy combination must uphold the same
//! system-level contracts the stock driver does:
//!
//! * the per-batch cross-subsystem audit (`DriverPolicy::audit_enabled`)
//!   passes on every serviced batch;
//! * page residency is conserved — the VA space never holds more
//!   GPU-resident pages than the memory manager has resident blocks, and
//!   the manager never exceeds its capacity;
//! * reruns at the same seed are bit-identical (the full serialized
//!   `RunResult`, not just summary numbers), and running batch-by-batch
//!   is indistinguishable from `run()`;
//! * fanning the grid across worker threads changes nothing;
//! * a mid-run snapshot/restore under a non-default policy stack (oracle
//!   future maps, LFU touch counts, the random evictor's RNG) resumes
//!   bit-identically.
//!
//! Both a regular workload (vecadd) and an irregular one (graph BFS) run
//! under oversubscription, so every combination actually evicts.

use std::sync::Mutex;

use uvm_core::parallel;
use uvm_core::{Progress, RunHints, RunInProgress, SystemConfig, SystemSnapshot, UvmSystem};
use uvm_driver::policy::DriverPolicy;
use uvm_driver::{EvictionPolicyKind, PrefetchPolicyKind};
use uvm_sim::mem::PAGES_PER_VABLOCK;
use uvm_sim::time::SimDuration;
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::workload::Workload;
use uvm_workloads::{graph_bfs, vecadd};

/// The harness-wide default seed (`uvm_bench::SEED`).
const SEED: u64 = 0x5C21;

/// Serialize tests that mutate the process-global worker budget.
static JOBS_GUARD: Mutex<()> = Mutex::new(());

/// Regular workload: page-strided vecadd, ~9 MiB footprint.
fn vecadd_small() -> Workload {
    vecadd::build(vecadd::VecAddParams {
        warps: 8,
        statements: 3,
        coalesced: false,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    })
}

/// Irregular workload: pointer-chasing BFS, ~5 MiB footprint.
fn bfs_small() -> Workload {
    graph_bfs::build(graph_bfs::GraphBfsParams {
        vertices: 2048,
        avg_degree: 4,
        vdata_bytes: 2048,
        frontier_per_warp: 32,
        max_levels: 8,
        compute_per_vertex: SimDuration::from_nanos(100),
        seed: 0xBF5,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    })
}

/// Every (prefetch, eviction) combination the engine supports.
fn combos() -> Vec<(PrefetchPolicyKind, EvictionPolicyKind)> {
    let mut out = Vec::new();
    for &p in &PrefetchPolicyKind::ALL {
        for &e in &EvictionPolicyKind::ALL {
            out.push((p, e));
        }
    }
    out
}

/// Oversubscribed audited config for one policy combination.
fn config(mem_mb: u64, p: PrefetchPolicyKind, e: EvictionPolicyKind) -> SystemConfig {
    SystemConfig::test_small(mem_mb * 1024 * 1024)
        .with_policy(DriverPolicy::default().prefetcher(p).evictor(e).audited(true))
        .with_seed(SEED)
}

/// Run `workload` batch-by-batch under (`p`, `e`), checking residency
/// conservation after every batch, and return the serialized result.
fn stepped_run(
    workload: &Workload,
    mem_mb: u64,
    p: PrefetchPolicyKind,
    e: EvictionPolicyKind,
) -> String {
    let mut run = UvmSystem::new(config(mem_mb, p, e))
        .start(workload, &RunHints::default())
        .expect("run starts");
    let capacity = run.driver().memory().capacity_blocks();
    loop {
        let progress = run
            .advance_batch(workload)
            .unwrap_or_else(|err| panic!("audit/service failed under {}/{}: {err}", p.name(), e.name()));
        let resident_blocks = run.driver().memory().resident_blocks();
        let resident_pages = run.driver().va_space.total_resident_pages();
        assert!(
            resident_blocks <= capacity,
            "{}/{}: {resident_blocks} resident blocks exceed capacity {capacity}",
            p.name(),
            e.name()
        );
        assert!(
            resident_pages <= resident_blocks * PAGES_PER_VABLOCK,
            "{}/{}: {resident_pages} resident pages in {resident_blocks} blocks",
            p.name(),
            e.name()
        );
        if progress == Progress::Finished {
            break;
        }
    }
    let result = run.into_result(workload);
    serde_json::to_string(&result).expect("result serializes")
}

/// The audit + conservation + bit-identical-rerun differential, for one
/// workload at one memory size.
fn check_matrix(workload: &Workload, mem_mb: u64) {
    assert!(
        mem_mb * 1024 * 1024 < workload.footprint_bytes(),
        "matrix must run oversubscribed"
    );
    for (p, e) in combos() {
        // One-shot run (also audited): the rerun baseline.
        let oneshot = UvmSystem::new(config(mem_mb, p, e)).run(workload);
        assert!(
            oneshot.evictions > 0,
            "{}/{}: oversubscription must force evictions",
            p.name(),
            e.name()
        );
        let oneshot = serde_json::to_string(&oneshot).expect("result serializes");
        // Stepped rerun with per-batch conservation checks: bit-identical.
        let stepped = stepped_run(workload, mem_mb, p, e);
        assert_eq!(
            oneshot,
            stepped,
            "{}/{}: rerun diverged at seed {SEED:#x}",
            p.name(),
            e.name()
        );
    }
}

#[test]
fn vecadd_matrix_audits_conserves_and_reruns_identically() {
    check_matrix(&vecadd_small(), 4);
}

#[test]
fn bfs_matrix_audits_conserves_and_reruns_identically() {
    check_matrix(&bfs_small(), 4);
}

#[test]
fn policy_grid_is_jobs_invariant() {
    let _g = JOBS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let workload = vecadd_small();
    let grid = |jobs: usize| -> Vec<String> {
        parallel::configure_jobs(jobs);
        parallel::map(combos(), |(p, e)| {
            let r = UvmSystem::new(config(4, p, e)).run(&workload);
            serde_json::to_string(&r).expect("result serializes")
        })
    };
    let serial = grid(1);
    let fanned = grid(4);
    parallel::configure_jobs(1);
    assert_eq!(serial, fanned, "--jobs 4 must be byte-identical to --jobs 1");
}

/// Satellite check: snapshot mid-run under non-default policy stacks and
/// restore — the oracle's future-access map, the LFU evictor's touch
/// counts, and the random evictor's RNG must all survive the round-trip
/// for the resumed run to stay bit-identical.
#[test]
fn snapshot_restore_mid_run_under_non_default_policies() {
    let workload = bfs_small();
    for (p, e) in [
        (PrefetchPolicyKind::Oracle, EvictionPolicyKind::Lfu),
        (PrefetchPolicyKind::SequentialStride, EvictionPolicyKind::Random),
    ] {
        let straight = UvmSystem::new(config(4, p, e)).run(&workload);
        assert!(
            straight.num_batches > 4,
            "{}/{}: need enough batches to snapshot mid-run",
            p.name(),
            e.name()
        );
        let straight = serde_json::to_string(&straight).expect("result serializes");

        let mut run = UvmSystem::new(config(4, p, e))
            .start(&workload, &RunHints::default())
            .expect("run starts");
        let snap = loop {
            match run.advance_batch(&workload).expect("batch services") {
                Progress::Batch(3) => break run.snapshot(&workload, 0),
                Progress::Batch(_) => {}
                Progress::Finished => panic!("finished before snapshot point"),
            }
        };
        // Full fidelity must survive the on-disk encoding.
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        let back: SystemSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        let mut resumed = RunInProgress::restore(&back, &workload).expect("snapshot restores");
        while resumed.advance_batch(&workload).expect("batch services") != Progress::Finished {}
        let resumed = serde_json::to_string(&resumed.into_result(&workload)).expect("serializes");
        assert_eq!(
            straight,
            resumed,
            "{}/{}: restored run diverged from the uninterrupted run",
            p.name(),
            e.name()
        );
    }
}

