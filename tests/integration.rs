//! Cross-crate integration tests: whole-system invariants that span the
//! GPU model, the driver, and the host-OS substrate.

use uvm_core::{SystemConfig, UvmSystem};
use uvm_driver::policy::DriverPolicy;
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::{fft, gauss_seidel, hpgmg, random, regular, sgemm, spmv, stream, vecadd};

const MB: u64 = 1024 * 1024;

/// Every benchmark generator, on a small in-core device: the run completes,
/// every touched page migrates exactly once, and the batch log is
/// internally consistent.
#[test]
fn all_workloads_complete_in_core() {
    let workloads = vec![
        vecadd::build(vecadd::VecAddParams::default()),
        regular::build(regular::RegularParams {
            warps: 32,
            pages_per_warp: 16,
            pages_per_instr: 4,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }),
        random::build(random::RandomParams {
            warps: 32,
            accesses_per_warp: 16,
            footprint_pages: 4096,
            seed: 7,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }),
        stream::build(stream::StreamParams {
            warps: 32,
            pages_per_warp: 8,
            iters: 1,
            warps_per_page: 2,
            cpu_init: Some(CpuInitPolicy::Chunked { threads: 4 }),
        }),
        sgemm::build(sgemm::GemmParams {
            n: 512,
            tile: 128,
            elem_size: 4,
            pages_per_instr: 32,
            compute_per_ktile: uvm_sim::time::SimDuration::from_micros(10),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }),
        fft::build(fft::FftParams {
            chunks: 16,
            pages_per_chunk: 4,
            pages_per_instr: 4,
            compute_per_pass: uvm_sim::time::SimDuration::from_micros(5),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }),
        gauss_seidel::build(gauss_seidel::GaussSeidelParams {
            rows: 128,
            pages_per_row: 2,
            warps: 16,
            iters: 1,
            compute_per_row: uvm_sim::time::SimDuration::from_micros(1),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }),
        hpgmg::build(hpgmg::HpgmgParams {
            level0_pages: 256,
            levels: 3,
            vcycles: 1,
            warps: 16,
            pages_per_instr: 8,
            compute_per_phase: uvm_sim::time::SimDuration::from_micros(5),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }),
        spmv::build(spmv::SpmvParams {
            rows: 1024,
            row_pages_per_chunk: 2,
            rows_per_warp: 32,
            nnz_per_row: 4,
            band_fraction: 0.6,
            bandwidth: 64,
            compute_per_row: uvm_sim::time::SimDuration::ZERO,
            seed: 3,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }),
    ];

    for w in workloads {
        let touched: std::collections::BTreeSet<_> = w
            .programs
            .iter()
            .flat_map(|p| p.touched_pages())
            .collect();
        let result = UvmSystem::new(SystemConfig::test_small(256 * MB)).run(&w);
        let migrated: u64 = result.records.iter().map(|r| r.pages_migrated).sum();
        assert_eq!(
            migrated,
            touched.len() as u64,
            "{}: every touched page migrates exactly once in-core",
            w.name
        );
        assert!(result.kernel_time.as_nanos() > 0, "{}", w.name);
        assert!(
            result.total_batch_time <= result.kernel_time,
            "{}: batch time {} exceeds kernel time {}",
            w.name,
            result.total_batch_time,
            result.kernel_time
        );
        assert_eq!(result.evictions, 0, "{}: in-core runs must not evict", w.name);
    }
}

/// Batch records are internally consistent for an oversubscribed run with
/// prefetching: timing components sum to the service time, counters are
/// coherent, and records are time-ordered.
#[test]
fn batch_records_are_consistent() {
    let w = stream::build(stream::StreamParams {
        warps: 128,
        pages_per_warp: 16,
        iters: 2,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::Striped { threads: 8 }),
    });
    let config = SystemConfig::test_small(16 * MB).with_policy(DriverPolicy::with_prefetch());
    let result = UvmSystem::new(config).run(&w);
    assert!(result.evictions > 0, "this run must oversubscribe");

    let mut prev_end = uvm_sim::time::SimTime::ZERO;
    for r in &result.records {
        assert_eq!(r.end - r.start, r.component_sum(), "batch {} component times", r.seq);
        assert!(r.start >= prev_end, "batches never overlap (single worker)");
        prev_end = r.end;
        assert!(r.unique_pages <= r.raw_faults);
        assert_eq!(r.raw_faults, r.read_faults + r.write_faults + r.prefetch_faults);
        assert_eq!(r.total_dups(), r.raw_faults - r.unique_pages);
        assert_eq!(r.num_va_blocks as usize, r.per_block_faults.len());
        assert_eq!(r.num_va_blocks as usize, r.served_blocks.len());
        assert_eq!(r.evictions as usize, r.evicted_blocks.len());
        assert!(r.pages_migrated >= r.prefetched_pages);
        assert!(r.distinct_sms as u64 <= r.raw_faults.max(1));
        let per_block_total: u32 = r.per_block_faults.iter().sum();
        assert_eq!(per_block_total as u64, r.unique_pages);
    }
}

/// The same configuration and workload produce bit-identical batch logs —
/// whole-stack determinism.
#[test]
fn whole_stack_determinism() {
    let mk = || {
        sgemm::build(sgemm::GemmParams {
            n: 512,
            tile: 128,
            elem_size: 4,
            pages_per_instr: 32,
            compute_per_ktile: uvm_sim::time::SimDuration::from_micros(10),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        })
    };
    let r1 = UvmSystem::new(SystemConfig::test_small(8 * MB).with_seed(9)).run(&mk());
    let r2 = UvmSystem::new(SystemConfig::test_small(8 * MB).with_seed(9)).run(&mk());
    assert_eq!(r1.kernel_time, r2.kernel_time);
    assert_eq!(r1.num_batches, r2.num_batches);
    assert_eq!(r1.evictions, r2.evictions);
    let key = |r: &uvm_core::RunResult| -> Vec<(u64, u64, u64, u64)> {
        r.records
            .iter()
            .map(|b| (b.start.as_nanos(), b.raw_faults, b.pages_migrated, b.evictions))
            .collect()
    };
    assert_eq!(key(&r1), key(&r2));
}

/// Eviction keeps the device within its physical capacity at every step,
/// and evicted data is re-migrated on demand (no lost pages).
#[test]
fn eviction_preserves_data_and_capacity() {
    let w = stream::build(stream::StreamParams {
        warps: 64,
        pages_per_warp: 32,
        iters: 2,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    });
    // 24 MiB footprint, 8 MiB device.
    let config = SystemConfig::test_small(8 * MB);
    let capacity_blocks = config.capacity_blocks();
    let result = UvmSystem::new(config).run(&w);
    assert!(result.evictions > 0);

    // Replay the residency bookkeeping from the batch log. Within a batch,
    // serves and evictions interleave (a block can be migrated and then
    // evicted by a later block's allocation in the same batch), so the
    // invariants are checked at batch granularity.
    let mut resident: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for r in &result.records {
        let before = resident.clone();
        for &b in &r.served_blocks {
            resident.insert(b);
        }
        for &b in &r.evicted_blocks {
            assert!(
                before.contains(&b) || r.served_blocks.contains(&b),
                "batch {} evicted block {} that was never resident",
                r.seq,
                b
            );
            resident.remove(&b);
        }
        assert!(
            resident.len() as u64 <= capacity_blocks,
            "batch {}: {} blocks resident exceeds capacity {}",
            r.seq,
            resident.len(),
            capacity_blocks
        );
    }
    // Iter 2 re-touches everything: total migrations exceed the footprint.
    let migrated: u64 = result.records.iter().map(|r| r.pages_migrated).sum();
    assert!(migrated > w.footprint_pages(), "evicted pages re-migrated");
}

/// The explicit-management baseline beats UVM end to end and performs no
/// driver work at all.
#[test]
fn explicit_baseline_is_faster_and_fault_free() {
    let mk = || {
        stream::build(stream::StreamParams {
            warps: 64,
            pages_per_warp: 8,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        })
    };
    let uvm = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&mk());
    let explicit = UvmSystem::new(SystemConfig::test_small(64 * MB)).run_explicit(&mk());
    assert_eq!(explicit.num_batches, 0);
    assert_eq!(explicit.total_faults_inserted, 0);
    assert!(explicit.upfront_copy_time.as_nanos() > 0);
    let explicit_total = explicit.kernel_time + explicit.upfront_copy_time;
    assert!(
        explicit_total.as_nanos() * 5 < uvm.kernel_time.as_nanos(),
        "explicit ({explicit_total}) should be >5x faster than UVM ({})",
        uvm.kernel_time
    );
}

/// Host OS accounting: unmap happens once per CPU-initialized VABlock in a
/// single-pass in-core run, and never for GPU-only (output) data.
#[test]
fn unmap_accounting_matches_cpu_touched_blocks() {
    let w = stream::build(stream::StreamParams {
        warps: 32,
        pages_per_warp: 16,
        iters: 1,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    });
    let result = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&w);
    // a and b are CPU-initialized; c is GPU-written only.
    let unmapped_pages: u64 = result.records.iter().map(|r| r.cpu_pages_unmapped).sum();
    assert_eq!(unmapped_pages, 2 * 32 * 16, "exactly a+b pages unmapped");
    // Transfer bytes: only a and b move data; c is populate-only.
    assert_eq!(result.total_bytes_migrated(), 2 * 32 * 16 * 4096);
}

/// Ablation: disabling dedup makes runs slower, never faster.
#[test]
fn dedup_ablation_costs_time() {
    let mk = || {
        stream::build(stream::StreamParams {
            warps: 128,
            pages_per_warp: 8,
            iters: 1,
            warps_per_page: 4,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        })
    };
    let on = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&mk());
    let off = UvmSystem::new(
        SystemConfig::test_small(64 * MB).with_policy(DriverPolicy::default().dedup(false)),
    )
    .run(&mk());
    assert!(
        off.total_batch_time >= on.total_batch_time,
        "dedup-off must not be faster: {} vs {}",
        off.total_batch_time,
        on.total_batch_time
    );
}
